#!/usr/bin/env python3
"""Regression tests for tools/perf_gate.py (the CI perf ratchet).

Covers the gate logic on synthetic ftnoc_perf JSONL: pass above the
floor, fail below it, best-of grouping on concatenated runs, baseline
re-pinning with --update, and the comparison artifact's contents.
Pure stdlib; runs under ctest as a tier1 lane.
"""

import importlib.util
import json
import os
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "tools", "perf_gate.py")
spec = importlib.util.spec_from_file_location("perf_gate", TOOL)
perf_gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(perf_gate)


def write_jsonl(path, reps):
    """reps: list of rep descriptors, each a list of (cycles, wall_ms)."""
    with open(path, "w") as f:
        for rep in reps:
            for point, (cycles, wall_ms) in enumerate(rep):
                f.write(json.dumps({"point": point, "cycles": cycles,
                                    "wall_ms": wall_ms}) + "\n")


def write_baseline(path, cps):
    """Legacy flat single-entry baseline (the pre-multi-preset format)."""
    with open(path, "w") as f:
        json.dump({"preset": "perf", "best_cycles_per_sec": cps,
                   "machine": "test", "note": "pinned by test"}, f)


def write_multi_baseline(path, entries):
    """Multi-preset baseline: entries maps preset name -> cycles/sec."""
    with open(path, "w") as f:
        json.dump({"presets": {
            name: {"preset": name, "best_cycles_per_sec": cps,
                   "machine": "test", "note": "pinned by test"}
            for name, cps in entries.items()}}, f)


class PerfGateTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.jsonl = os.path.join(self.tmp.name, "perf.jsonl")
        self.baseline = os.path.join(self.tmp.name, "baseline.json")
        self.cmp = os.path.join(self.tmp.name, "cmp.json")

    def tearDown(self):
        self.tmp.cleanup()

    def gate(self, *extra):
        return perf_gate.main(["--jsonl", self.jsonl,
                               "--baseline", self.baseline,
                               "--out", self.cmp] + list(extra))

    def test_pass_above_floor(self):
        # 5000 cycles / 0.5 s = 10,000 c/s vs baseline 11,000: ratio 0.91,
        # inside the default -20% tolerance.
        write_jsonl(self.jsonl, [[(2500, 250.0), (2500, 250.0)]])
        write_baseline(self.baseline, 11000.0)
        self.assertEqual(self.gate(), 0)
        cmp = json.load(open(self.cmp))
        self.assertTrue(cmp["pass"])
        self.assertAlmostEqual(cmp["measured_cycles_per_sec"], 10000.0)
        self.assertAlmostEqual(cmp["floor_cycles_per_sec"], 8800.0)

    def test_fail_below_floor(self):
        # 10,000 c/s vs baseline 15,000: ratio 0.67 < 0.80 floor.
        write_jsonl(self.jsonl, [[(5000, 500.0)]])
        write_baseline(self.baseline, 15000.0)
        self.assertEqual(self.gate(), 1)
        cmp = json.load(open(self.cmp))
        self.assertFalse(cmp["pass"])

    def test_tolerance_override(self):
        # Same 0.67 ratio passes with a 40% tolerance.
        write_jsonl(self.jsonl, [[(5000, 500.0)]])
        write_baseline(self.baseline, 15000.0)
        self.assertEqual(self.gate("--tolerance", "0.4"), 0)

    def test_best_of_concatenated_runs(self):
        # Two concatenated runs (point index resets): the faster second
        # run (20,000 c/s) must win over the slower first (5,000 c/s).
        write_jsonl(self.jsonl, [[(1000, 200.0), (1000, 200.0)],
                                 [(2000, 100.0), (2000, 100.0)]])
        write_baseline(self.baseline, 20000.0)
        self.assertEqual(self.gate(), 0)
        cmp = json.load(open(self.cmp))
        self.assertAlmostEqual(cmp["measured_cycles_per_sec"], 20000.0)

    def test_update_repins_baseline(self):
        write_jsonl(self.jsonl, [[(9000, 300.0)]])  # 30,000 c/s
        self.assertEqual(self.gate("--update", "--note", "faster kernel"), 0)
        base = json.load(open(self.baseline))["presets"]["perf"]
        self.assertAlmostEqual(base["best_cycles_per_sec"], 30000.0)
        self.assertEqual(base["note"], "faster kernel")
        # The freshly pinned baseline gates its own run as a pass.
        self.assertEqual(self.gate(), 0)

    def test_empty_input_is_an_error(self):
        open(self.jsonl, "w").close()
        write_baseline(self.baseline, 1000.0)
        self.assertEqual(self.gate(), 2)

    def test_multi_preset_baseline_selects_entry(self):
        # 10,000 c/s: passes against the perf_large pin (10,500) but is
        # far below the perf pin (50,000) — the --preset switch must pick
        # the right entry.
        write_jsonl(self.jsonl, [[(5000, 500.0)]])
        write_multi_baseline(self.baseline,
                             {"perf": 50000.0, "perf_large": 10500.0})
        self.assertEqual(self.gate("--preset", "perf_large"), 0)
        cmp = json.load(open(self.cmp))
        self.assertEqual(cmp["preset"], "perf_large")
        self.assertAlmostEqual(cmp["baseline_cycles_per_sec"], 10500.0)
        self.assertEqual(self.gate("--preset", "perf"), 1)

    def test_missing_preset_entry_is_an_error(self):
        write_jsonl(self.jsonl, [[(5000, 500.0)]])
        write_multi_baseline(self.baseline, {"perf": 10000.0})
        self.assertEqual(self.gate("--preset", "perf_large"), 2)

    def test_legacy_flat_baseline_still_gates_perf(self):
        # The pre-multi-preset flat file reads as its single entry.
        write_jsonl(self.jsonl, [[(5000, 500.0)]])
        write_baseline(self.baseline, 10000.0)
        self.assertEqual(self.gate("--preset", "perf"), 0)
        self.assertEqual(self.gate("--preset", "perf_large"), 2)

    def test_update_preserves_other_preset_entries(self):
        write_jsonl(self.jsonl, [[(9000, 300.0)]])  # 30,000 c/s
        write_multi_baseline(self.baseline,
                             {"perf": 50000.0, "perf_large": 10000.0})
        self.assertEqual(
            self.gate("--preset", "perf_large", "--update",
                      "--note", "bigger fabric"), 0)
        base = json.load(open(self.baseline))
        self.assertAlmostEqual(
            base["presets"]["perf_large"]["best_cycles_per_sec"], 30000.0)
        self.assertEqual(base["presets"]["perf_large"]["note"],
                         "bigger fabric")
        # The untouched perf entry survives the re-pin verbatim.
        self.assertAlmostEqual(
            base["presets"]["perf"]["best_cycles_per_sec"], 50000.0)

    def test_update_upgrades_legacy_flat_baseline(self):
        # Re-pinning a new preset on top of a legacy flat file keeps the
        # old entry and writes the nested format.
        write_jsonl(self.jsonl, [[(9000, 300.0)]])  # 30,000 c/s
        write_baseline(self.baseline, 12345.0)
        self.assertEqual(self.gate("--preset", "perf_large", "--update"), 0)
        base = json.load(open(self.baseline))
        self.assertAlmostEqual(
            base["presets"]["perf"]["best_cycles_per_sec"], 12345.0)
        self.assertAlmostEqual(
            base["presets"]["perf_large"]["best_cycles_per_sec"], 30000.0)


if __name__ == "__main__":
    unittest.main()

// Unit tests for the Bernoulli fault processes and the error-check unit.

#include <gtest/gtest.h>

#include "core/error_check_unit.hpp"
#include "core/fault_injector.hpp"

namespace ftnoc {
namespace {

Flit clean_flit() {
  return make_flit(FlitType::kBody, 1, 0, 1, 1, 0, 0x1234567890ABCDEFULL);
}

TEST(FaultInjector, ZeroRatesInjectNothing) {
  FaultConfig cfg;  // All rates zero.
  FaultInjector inj(cfg, Rng(1));
  Flit f = clean_flit();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(inj.maybe_corrupt_link(f), LinkFault::kNone);
    EXPECT_FALSE(inj.upset_routing());
    EXPECT_FALSE(inj.upset_va_allocation());
    EXPECT_FALSE(inj.upset_sa_grant());
  }
  EXPECT_EQ(ecc::decode(f.codeword).status, ecc::DecodeStatus::kClean);
}

TEST(FaultInjector, LinkFaultRateRoughlyCalibrated) {
  FaultConfig cfg;
  cfg.link_error_rate = 0.1;
  FaultInjector inj(cfg, Rng(2));
  int faults = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    Flit f = clean_flit();
    if (inj.maybe_corrupt_link(f) != LinkFault::kNone) ++faults;
  }
  EXPECT_NEAR(static_cast<double>(faults) / n, 0.1, 0.01);
}

TEST(FaultInjector, MultiBitFractionSplitsFaults) {
  FaultConfig cfg;
  cfg.link_error_rate = 1.0;
  cfg.multi_bit_fraction = 0.25;
  FaultInjector inj(cfg, Rng(3));
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    Flit f = clean_flit();
    inj.maybe_corrupt_link(f);
  }
  const double frac = static_cast<double>(inj.link_multi_injected()) /
                      (inj.link_single_injected() + inj.link_multi_injected());
  EXPECT_NEAR(frac, 0.25, 0.02);
}

TEST(FaultInjector, SingleBitFaultIsCorrectable) {
  FaultConfig cfg;
  cfg.link_error_rate = 1.0;
  cfg.multi_bit_fraction = 0.0;
  FaultInjector inj(cfg, Rng(4));
  for (int i = 0; i < 200; ++i) {
    Flit f = clean_flit();
    ASSERT_EQ(inj.maybe_corrupt_link(f), LinkFault::kSingleBit);
    const auto r = ecc::decode(f.codeword);
    EXPECT_EQ(r.status, ecc::DecodeStatus::kCorrected);
    EXPECT_EQ(r.data, f.payload);
  }
}

TEST(FaultInjector, MultiBitFaultIsDetectedNotCorrected) {
  FaultConfig cfg;
  cfg.link_error_rate = 1.0;
  cfg.multi_bit_fraction = 1.0;
  FaultInjector inj(cfg, Rng(5));
  for (int i = 0; i < 200; ++i) {
    Flit f = clean_flit();
    ASSERT_EQ(inj.maybe_corrupt_link(f), LinkFault::kMultiBit);
    EXPECT_EQ(ecc::decode(f.codeword).status,
              ecc::DecodeStatus::kUncorrectable);
  }
}

TEST(FaultInjector, CountersTrackInjections) {
  FaultConfig cfg;
  cfg.rt_error_rate = 0.5;
  cfg.va_error_rate = 0.5;
  cfg.sa_error_rate = 0.5;
  FaultInjector inj(cfg, Rng(6));
  for (int i = 0; i < 1000; ++i) {
    inj.upset_routing();
    inj.upset_va_allocation();
    inj.upset_sa_grant();
  }
  EXPECT_NEAR(static_cast<double>(inj.rt_injected()), 500, 60);
  EXPECT_NEAR(static_cast<double>(inj.va_injected()), 500, 60);
  EXPECT_NEAR(static_cast<double>(inj.sa_injected()), 500, 60);
}

TEST(ErrorCheckUnit, ClassifiesAndCountsAllThreeOutcomes) {
  ErrorCheckUnit unit;
  Flit clean = clean_flit();
  EXPECT_EQ(unit.check(clean), FlitCheck::kClean);

  Flit single = clean_flit();
  single.codeword.flip(13);
  EXPECT_EQ(unit.check(single), FlitCheck::kCorrected);
  // The unit repairs the codeword in place.
  EXPECT_EQ(ecc::decode(single.codeword).status, ecc::DecodeStatus::kClean);

  Flit dbl = clean_flit();
  dbl.codeword.flip(13);
  dbl.codeword.flip(37);
  EXPECT_EQ(unit.check(dbl), FlitCheck::kUncorrectable);

  EXPECT_EQ(unit.clean_count(), 1u);
  EXPECT_EQ(unit.corrected_count(), 1u);
  EXPECT_EQ(unit.uncorrectable_count(), 1u);
  EXPECT_EQ(unit.checks(), 3u);
  unit.reset_counters();
  EXPECT_EQ(unit.checks(), 0u);
}

}  // namespace
}  // namespace ftnoc

// Configuration-space property sweep: whatever the topology shape, VC
// count, buffer depth, packet length or pipeline depth, the protected
// network must deliver every message intact under link faults. This is the
// broad-brush regression net over the router's state machines.

#include <gtest/gtest.h>

#include <tuple>

#include "noc/simulator.hpp"

namespace ftnoc {
namespace {

struct SweepPoint {
  int width;
  int height;
  int vcs;
  int depth;
  int packet_len;
  int stages;
};

class ConfigSpaceSweep : public ::testing::TestWithParam<SweepPoint> {};

TEST_P(ConfigSpaceSweep, CleanDeliveryUnderLinkFaults) {
  const SweepPoint p = GetParam();
  SimConfig cfg;
  cfg.mesh_width = p.width;
  cfg.mesh_height = p.height;
  cfg.num_vcs = p.vcs;
  cfg.vc_buffer_depth = p.depth;
  cfg.packet_length = p.packet_len;
  cfg.pipeline_stages = p.stages;
  if (p.stages == 4) cfg.retransmission_depth = 4;
  cfg.protection = LinkProtection::kHbh;
  cfg.faults.link_error_rate = 0.01;
  cfg.injection_rate = 0.08;
  cfg.warmup_messages = 100;
  cfg.total_messages = 1'000;
  cfg.max_cycles = 400'000;
  ASSERT_EQ(cfg.validate(), std::nullopt);
  const SimResults r = run_simulation(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.corrupted_delivered, 0u);
  EXPECT_EQ(r.unprotected_errors, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConfigSpaceSweep,
    ::testing::Values(
        SweepPoint{2, 2, 1, 2, 4, 3},   // Minimal everything.
        SweepPoint{8, 2, 2, 4, 4, 3},   // Skewed mesh.
        SweepPoint{2, 8, 2, 4, 4, 3},   // Skewed the other way.
        SweepPoint{5, 5, 3, 4, 4, 3},   // Odd dimensions.
        SweepPoint{4, 4, 6, 8, 4, 3},   // Max VCs, deep buffers.
        SweepPoint{4, 4, 3, 4, 1, 3},   // Single-flit packets.
        SweepPoint{4, 4, 3, 4, 9, 3},   // Packets longer than buffers.
        SweepPoint{4, 4, 3, 4, 4, 1},   // Single-stage router.
        SweepPoint{4, 4, 3, 4, 4, 2},   // Two-stage router.
        SweepPoint{4, 4, 3, 4, 4, 4}),  // Four-stage router.
    [](const ::testing::TestParamInfo<SweepPoint>& info) {
      const SweepPoint& p = info.param;
      return std::to_string(p.width) + "x" + std::to_string(p.height) +
             "_v" + std::to_string(p.vcs) + "_d" + std::to_string(p.depth) +
             "_m" + std::to_string(p.packet_len) + "_s" +
             std::to_string(p.stages);
    });

class TorusSweep : public ::testing::TestWithParam<TrafficPattern> {};

TEST_P(TorusSweep, TorusDeliversCleanUnderFaults) {
  SimConfig cfg;
  cfg.mesh_width = 4;
  cfg.mesh_height = 4;
  cfg.torus = true;
  cfg.pattern = GetParam();
  cfg.protection = LinkProtection::kHbh;
  cfg.faults.link_error_rate = 0.01;
  cfg.injection_rate = 0.08;
  cfg.warmup_messages = 100;
  cfg.total_messages = 1'000;
  cfg.max_cycles = 400'000;
  const SimResults r = run_simulation(cfg);
  EXPECT_TRUE(r.completed) << to_string(GetParam());
  EXPECT_EQ(r.corrupted_delivered, 0u);
}

INSTANTIATE_TEST_SUITE_P(Patterns, TorusSweep,
                         ::testing::Values(TrafficPattern::kUniformRandom,
                                           TrafficPattern::kBitComplement,
                                           TrafficPattern::kTornado));

}  // namespace
}  // namespace ftnoc

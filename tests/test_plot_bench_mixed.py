#!/usr/bin/env python3
"""Regression: plot_bench.py on mixed-schema JSONL (fault-gated columns).

One campaign file can legitimately mix records with and without the
fault-gated counters (packets_rerouted, unreachable_drops,
links_escalated): only points whose config enables permanent faults emit
them. The converter must keep every row and write 0 — not an empty cell,
not a crash, not a dropped row — for a column a row does not have.
"""
import csv
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
PLOT_BENCH = os.path.join(REPO, "tools", "plot_bench.py")

MIXED_JSONL = """\
{"label":"FaultDeg/base/faults=0","avg_latency_cycles":21.5,"messages_ejected":300}
{"label":"FaultDeg/base/faults=1","avg_latency_cycles":24.0,"messages_ejected":298,"packets_rerouted":12,"unreachable_drops":3,"links_escalated":1}
{"label":"FaultDeg/base/faults=2","avg_latency_cycles":29.5,"messages_ejected":290,"packets_rerouted":40,"unreachable_drops":9,"links_escalated":2}
"""


def main():
    with tempfile.TemporaryDirectory() as td:
        src = os.path.join(td, "mixed.jsonl")
        outdir = os.path.join(td, "csv")
        with open(src, "w") as f:
            f.write(MIXED_JSONL)
        subprocess.run([sys.executable, PLOT_BENCH, src, outdir], check=True)

        path = os.path.join(outdir, "faultdeg.csv")
        with open(path, newline="") as f:
            rows = list(csv.DictReader(f))

        assert len(rows) == 3, f"expected 3 rows, got {len(rows)}"
        by_x = {r["x"]: r for r in rows}
        # The fault-free row gets explicit zeros for the fault-gated columns.
        for col in ("packets_rerouted", "unreachable_drops",
                    "links_escalated"):
            assert by_x["0"][col] == "0", (
                f"row faults=0 column {col!r}: expected '0', "
                f"got {by_x['0'][col]!r}")
        # Rows that do have the counters keep their values.
        assert by_x["1"]["packets_rerouted"] == "12"
        assert by_x["2"]["links_escalated"] == "2"
        assert by_x["2"]["avg_latency_cycles"] == "29.5"
    print("plot_bench mixed-schema: OK")


if __name__ == "__main__":
    main()

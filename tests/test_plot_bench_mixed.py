#!/usr/bin/env python3
"""Regression: plot_bench.py on mixed-schema JSONL (fault-gated columns).

One campaign file can legitimately mix records with and without the
fault-gated counters (packets_rerouted, unreachable_drops,
links_escalated): only points whose config enables permanent faults emit
them. The converter must keep every row and write 0 — not an empty cell,
not a crash, not a dropped row — for a column a row does not have.
"""
import csv
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
PLOT_BENCH = os.path.join(REPO, "tools", "plot_bench.py")

MIXED_JSONL = """\
{"label":"FaultDeg/base/faults=0","avg_latency_cycles":21.5,"messages_ejected":300}
{"label":"FaultDeg/base/faults=1","avg_latency_cycles":24.0,"messages_ejected":298,"packets_rerouted":12,"unreachable_drops":3,"links_escalated":1}
{"label":"FaultDeg/base/faults=2","avg_latency_cycles":29.5,"messages_ejected":290,"packets_rerouted":40,"unreachable_drops":9,"links_escalated":2}
"""

# Two runs of the same figure under different buffer policies concatenated
# into one file: the private_vc lines omit the policy column (it is gated
# like the fault counters), the damq lines carry it.
# A fault_storm degradation curve: the converter derives the
# delivered_fraction column (messages_ejected / packets_created) so the
# CSV is directly plottable; rows without packets_created get 0, not a
# divide-by-zero.
STORM_JSONL = """\
{"label":"FaultStorm/adaptive/k=0","packets_created":1000,"messages_ejected":1000}
{"label":"FaultStorm/adaptive/k=2","packets_created":1000,"messages_ejected":950,"storm_kills":"250:1:E,500:5:E","links_storm_killed":2,"unreachable_drops":0}
{"label":"FaultStorm/adaptive/k=4","packets_created":0,"messages_ejected":0}
"""

POLICY_JSONL = """\
{"label":"Fig6/BC/err=0.001","avg_latency_cycles":21.5}
{"label":"Fig6/BC/err=0.01","avg_latency_cycles":24.0}
{"label":"Fig6/BC/err=0.001","avg_latency_cycles":19.0,"buffer_policy":"damq","damq_reserve_slots":2}
{"label":"Fig6/BC/err=0.01","avg_latency_cycles":20.5,"buffer_policy":"damq","damq_reserve_slots":2}
"""


def convert(td, name, text):
    src = os.path.join(td, name + ".jsonl")
    outdir = os.path.join(td, name + "_csv")
    with open(src, "w") as f:
        f.write(text)
    subprocess.run([sys.executable, PLOT_BENCH, src, outdir], check=True)
    return outdir


def check_fault_columns(td):
    path = os.path.join(convert(td, "mixed", MIXED_JSONL), "faultdeg.csv")
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))

    assert len(rows) == 3, f"expected 3 rows, got {len(rows)}"
    by_x = {r["x"]: r for r in rows}
    # The fault-free row gets explicit zeros for the fault-gated columns.
    for col in ("packets_rerouted", "unreachable_drops",
                "links_escalated"):
        assert by_x["0"][col] == "0", (
            f"row faults=0 column {col!r}: expected '0', "
            f"got {by_x['0'][col]!r}")
    # Rows that do have the counters keep their values.
    assert by_x["1"]["packets_rerouted"] == "12"
    assert by_x["2"]["links_escalated"] == "2"
    assert by_x["2"]["avg_latency_cycles"] == "29.5"
    # A single-policy file keeps its plain series names and no policy
    # column — pre-policy CSVs must stay byte-identical.
    assert rows[0]["series"] == "base", rows[0]["series"]
    assert "buffer_policy" not in rows[0], sorted(rows[0])


def check_delivered_fraction(td):
    path = os.path.join(convert(td, "storm", STORM_JSONL), "faultstorm.csv")
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))

    assert len(rows) == 3, f"expected 3 rows, got {len(rows)}"
    by_x = {r["x"]: r for r in rows}
    assert float(by_x["0"]["delivered_fraction"]) == 1.0
    assert float(by_x["2"]["delivered_fraction"]) == 0.95
    # packets_created == 0 (never-started point): no division, restval 0.
    assert by_x["4"]["delivered_fraction"] == "0"
    # The storm counter backfills 0 on storm-free rows.
    assert by_x["0"]["links_storm_killed"] == "0"
    assert by_x["2"]["links_storm_killed"] == "2"
    # The storm_kills config string is non-numeric and must not leak into
    # the CSV schema.
    assert "storm_kills" not in rows[0], sorted(rows[0])


def check_policy_overlay(td):
    path = os.path.join(convert(td, "policy", POLICY_JSONL), "fig6.csv")
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))

    assert len(rows) == 4, f"expected 4 rows, got {len(rows)}"
    series = sorted({r["series"] for r in rows})
    # >= 2 policies in one figure: the policy is folded into the series
    # key so identical labels from different runs stay distinct curves
    # (the omitted column defaults to private_vc).
    assert series == ["BC[damq]", "BC[private_vc]"], series
    by_key = {(r["series"], r["x"]): r for r in rows}
    assert by_key[("BC[private_vc]", "0.001")]["avg_latency_cycles"] == "21.5"
    assert by_key[("BC[damq]", "0.001")]["avg_latency_cycles"] == "19.0"
    # The damq-gated reserve column backfills 0 on private_vc rows.
    assert by_key[("BC[private_vc]", "0.01")]["damq_reserve_slots"] == "0"
    assert by_key[("BC[damq]", "0.01")]["damq_reserve_slots"] == "2"


def main():
    with tempfile.TemporaryDirectory() as td:
        check_fault_columns(td)
        check_delivered_fraction(td)
        check_policy_overlay(td)
    print("plot_bench mixed-schema: OK")


if __name__ == "__main__":
    main()

# Memory-controller hotspot for the default 8x8 mesh (64 nodes).
#
# Node 36 (the central column of the lower half, where a memory controller
# tile usually sits) receives read-response-sized streams from every other
# node: 6 bursts of 32 flits each, one burst every 200 cycles, senders
# staggered 7 cycles apart so the ramp-up is gradual rather than a wall.
#
# Run it with:
#   ftnoc_sweep workload=workloads/mem_hotspot.wl injection_rate=0 \
#       link_stats=1 run_to_drain=1
packet_flits 4
many_to_one memstream start=0 dest=36 flits=32 count=6 period=200 stagger=7

# Bursty many-to-one on the default 8x8 mesh (64 nodes): periodic
# convergecast waves onto a corner sink (node 0), the worst-case ejection
# hotspot — plus a thin reverse broadcast of 1-flit control packets from
# the sink's neighbour so the return direction is not silent.
#
# Each wave: every node sends 16 flits to node 0; 8 waves, 500 cycles
# apart, senders staggered 3 cycles. Between waves the fabric drains,
# which is exactly the bursty profile that stresses VC backpressure near
# the sink.
packet_flits 4
many_to_one wave start=0 dest=0 flits=16 count=8 period=500 stagger=3
transfer ctrl start=250 src=1 dest=63 flits=1 count=8 period=500

# All-to-all collective on the default 8x8 mesh (64 nodes).
#
# Every ordered (src, dest) pair exchanges one 256-byte message (32 flits
# at 8 bytes/flit), as in an allreduce/alltoall exchange phase. Source
# blocks are staggered 11 cycles apart so injection ramps across the mesh
# instead of releasing 4032 transfers on one cycle.
packet_flits 4
all_to_all exchange start=0 bytes=256 stagger=11
